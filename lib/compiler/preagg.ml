open Divm_ring
open Divm_calc
open Divm_calc.Calc

(* Split an RHS into (optional top-level group-by, product factors). *)
let split_rhs = function
  | Sum (gb, body) -> (Some gb, Divm_delta.Poly.factors body)
  | e -> (None, Divm_delta.Poly.factors e)

let rejoin gb fs =
  let body = prod fs in
  match gb with Some gb -> sum gb body | None -> body

(* A factor is attachable to the batch pre-aggregation when its variables
   are all bound by the batch columns: comparisons filter the batch, value
   terms weight the pre-aggregated multiplicity. *)
let attachable rvars f =
  match f with
  | Cmp _ | Value _ -> Schema.subset (Calc.all_vars f) rvars
  | _ -> false

(* Positional canonicalization, mirroring Compile.canon_key. *)
let canon_string ~schema def =
  let tbl = Hashtbl.create 16 in
  let counter = ref 0 in
  let f (v : Schema.var) =
    match Hashtbl.find_opt tbl v.Schema.name with
    | Some v' -> v'
    | None ->
        let v' = { v with Schema.name = Printf.sprintf "!c%d" !counter } in
        incr counter;
        Hashtbl.add tbl v.Schema.name v';
        v'
  in
  let cschema = List.map f schema in
  let cdef = Calc.rename f def in
  Calc.to_string cdef ^ " | "
  ^ String.concat "," (List.map (fun (v : Schema.var) -> v.name) cschema)

(* Can [e] be pre-aggregated standalone? It must read the batch (so there
   is something to pre-aggregate), touch no stores or base relations (so it
   is computable from the batch alone), and be closed (no free input
   variables from the enclosing expression). This is deliberately
   recursive: [Sum_[k](Exists(dR ⋈ filters))] qualifies even though the
   delta sits under an Exists, which is exactly the shape the vectorized
   join executor wants as a compacted transient. *)
let batch_closed e =
  Calc.has_deltas e
  && (not (Calc.has_base_rels e))
  && Calc.map_refs e = []
  && match Calc.inputs ~bound:[] e with
     | [] -> true
     | _ :: _ -> false
     | exception Type_error _ -> false

let apply (prog : Prog.t) =
  let new_maps = ref [] in
  let counter = ref 0 in
  let triggers =
    List.map
      (fun (tr : Prog.trigger) ->
        let cache : (string, string * Schema.t) Hashtbl.t = Hashtbl.create 8 in
        let transients = ref [] in
        let intern def schema =
          let key = canon_string ~schema def in
          match Hashtbl.find_opt cache key with
          | Some (n, u) -> (n, u)
          | None ->
              incr counter;
              let n = Printf.sprintf "DELTA_%s_%d" tr.relation !counter in
              Hashtbl.replace cache key (n, schema);
              new_maps :=
                {
                  Prog.mname = n;
                  mschema = schema;
                  mkind = Prog.Transient;
                  definition = def;
                }
                :: !new_maps;
              transients :=
                {
                  Prog.target = n;
                  target_vars = schema;
                  op = Prog.Assign;
                  rhs = def;
                }
                :: !transients;
              (n, schema)
        in
        (* Recursive extraction of batch-only subexpressions nested inside
           Lift/Exists/Sum bodies, so distributed programs can ship
           pre-aggregated deltas instead of raw batches. *)
        let rec extract e =
          match e with
          | DeltaRel r ->
              let name, _ = intern (DeltaRel r) r.rvars in
              Map { mname = name; mvars = r.rvars }
          | Sum (gb, body)
            when batch_closed (Sum (gb, body))
                 && (match Calc.schema ~bound:[] (Sum (gb, body)) with
                    | _ -> true
                    | exception Type_error _ -> false) ->
              let name, uvars = intern (Sum (gb, body)) gb in
              ignore uvars;
              Map { mname = name; mvars = gb }
          | Sum (gb, q) -> Sum (gb, extract q)
          | Lift (v, q) -> Lift (v, extract q)
          | Exists q -> Exists (extract q)
          | Prod es -> Prod (List.map extract es)
          | Add es -> Add (List.map extract es)
          | e -> e
        in
        let rewrite (s : Prog.stmt) =
          if s.op <> Prog.Add_to then s
          else
            let gb, fs = split_rhs s.rhs in
            let idxs =
              List.mapi (fun i f -> (i, f)) fs
              |> List.filter (fun (_, f) ->
                     match f with DeltaRel _ -> true | _ -> false)
            in
            match idxs with
            | (i0, DeltaRel r) :: _ ->
                let attached =
                  List.mapi (fun i f -> (i, f)) fs
                  |> List.filter (fun (i, f) ->
                         i <> i0 && attachable r.rvars f)
                in
                let attached_idx = List.map fst attached in
                let others =
                  List.mapi (fun i f -> (i, f)) fs
                  |> List.filter (fun (i, _) ->
                         i <> i0 && not (List.mem i attached_idx))
                  |> List.map snd
                  |> List.fold_left
                       (fun acc f -> Schema.union acc (Calc.all_vars f))
                       (match gb with
                       | Some g -> Schema.union s.target_vars g
                       | None -> s.target_vars)
                in
                let used = Schema.inter r.rvars others in
                let def =
                  sum used (prod (DeltaRel r :: List.map snd attached))
                in
                (* the canonical key is positional, so the shared transient
                   is accessed with *this* occurrence's variables *)
                let name, _decl_vars = intern def used in
                let fs' =
                  List.mapi (fun i f -> (i, f)) fs
                  |> List.filter_map (fun (i, f) ->
                         if i = i0 then
                           Some (Map { mname = name; mvars = used })
                         else if List.mem i attached_idx then None
                         else Some f)
                in
                { s with rhs = rejoin gb fs' }
            | _ -> s
        in
        (* Second pass: extract batch-only subexpressions still nested inside
           Lift/Exists bodies (the top-level pass only touches the product's
           own delta factor). *)
        let rewrite s =
          let s = rewrite s in
          if s.Prog.op = Prog.Add_to && Calc.has_deltas s.rhs then
            { s with rhs = extract s.rhs }
          else s
        in
        let stmts = List.map rewrite tr.stmts in
        { tr with stmts = List.rev !transients @ stmts })
      prog.triggers
  in
  { prog with maps = prog.maps @ List.rev !new_maps; triggers }
