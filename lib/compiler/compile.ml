open Divm_ring
open Divm_calc
open Divm_calc.Calc
open Divm_delta

type options = { factorize : bool; preaggregate : bool; max_maps : int }

let default_options = { factorize = true; preaggregate = true; max_maps = 512 }

type mode = Recursive | Classical

type st = {
  opts : options;
  mode : mode;
  streams : (string * Schema.t) list;
  canon : (string, string) Hashtbl.t;
  mutable maps : Prog.map_decl list; (* reverse creation order *)
  mutable worklist : Prog.map_decl list;
  mutable stmts : (string * Prog.stmt) list; (* (trigger rel, stmt), reverse *)
  mutable counter : int;
}

let is_stream st r = List.mem_assoc r st.streams

(* Canonical key for map reuse: rename schema vars first (so the key is
   positional in the map's key order), then every other variable in traversal
   order. Alpha-equivalent definitions with positionally-identical schemas
   collide. *)
let canon_key ~schema def =
  let tbl = Hashtbl.create 16 in
  let counter = ref 0 in
  let f (v : Schema.var) =
    match Hashtbl.find_opt tbl v.Schema.name with
    | Some v' -> v'
    | None ->
        let v' = { v with Schema.name = Printf.sprintf "!c%d" !counter } in
        incr counter;
        Hashtbl.add tbl v.Schema.name v';
        v'
  in
  let cschema = List.map f schema in
  let cdef = Calc.rename f def in
  Calc.to_string cdef ^ " | "
  ^ String.concat "," (List.map (fun (v : Schema.var) -> v.name) cschema)

let fresh st hint =
  st.counter <- st.counter + 1;
  Printf.sprintf "%s_%d" hint st.counter

let declare st ~kind ~hint ~schema ~def =
  let key = canon_key ~schema def in
  match Hashtbl.find_opt st.canon key with
  | Some name -> name
  | None ->
      if List.length st.maps >= st.opts.max_maps then
        failwith "Compile: materialized map limit exceeded";
      let name = fresh st hint in
      let decl =
        { Prog.mname = name; mschema = schema; mkind = kind; definition = def }
      in
      st.maps <- decl :: st.maps;
      st.worklist <- decl :: st.worklist;
      Hashtbl.add st.canon key name;
      name

let base_map st rname rvars =
  declare st ~kind:Prog.Base ~hint:("BASE_" ^ rname) ~schema:rvars
    ~def:(Rel { rname; rvars })

(* Replace every base-relation atom by its (full-schema) base map. *)
let rec subst_base st e =
  match e with
  | Rel r -> Map { mname = base_map st r.rname r.rvars; mvars = r.rvars }
  | DeltaRel _ | Map _ | Const _ | Value _ | Cmp _ -> e
  | Lift (v, q) -> Lift (v, subst_base st q)
  | Exists q -> Exists (subst_base st q)
  | Sum (gb, q) -> Sum (gb, subst_base st q)
  | Prod es -> Prod (List.map (subst_base st) es)
  | Add es -> Add (List.map (subst_base st) es)

(* Variables an expression can bind when evaluated standalone; empty for
   filters and anything that cannot be typed without context. *)
let visible f =
  match Calc.schema ~bound:[] f with s -> s | exception Type_error _ -> []

let is_filter f =
  match f with
  | Cmp _ | Value _ | Const _ -> true
  | Lift (_, q) -> not (Calc.has_base_rels q || Calc.has_deltas q)
  | _ -> false

let filter_vars f = Calc.all_vars f

(* ------------------------------------------------------------------ *)
(* Materialization of update-independent parts                         *)
(* ------------------------------------------------------------------ *)

(* Group pure relational factors into connected components of the join
   graph, by shared visible variables. Returns a list of (vars, members)
   with members carrying their original factor index. *)
let components pure =
  List.fold_left
    (fun comps (i, f) ->
      let vs = visible f in
      let sharing, rest =
        List.partition (fun (cvs, _) -> Schema.inter cvs vs <> []) comps
      in
      let merged_vars =
        List.fold_left (fun acc (cvs, _) -> Schema.union acc cvs) vs sharing
      in
      let merged_members =
        List.concat_map snd sharing @ [ (i, f) ]
      in
      (merged_vars, merged_members) :: rest)
    [] pure
  |> List.rev

let rec mat_expr st ~ctx ~bound e =
  add (List.map (mat_mono st ~ctx ~bound) (Poly.monomials e))

and mat_mono st ~ctx ~bound m =
  match m with
  | Sum (gb, body) ->
      (* Everything outside the projection sees only [gb], so the context
         narrows to it — nested aggregates then materialize as genuinely
         aggregated maps (e.g. Q17's per-pkey quantity sums) instead of
         over-keyed copies. Outer variables that occur inside the body are
         equality correlations (shared names) and must stay. *)
      let ctx' = Schema.union gb (Schema.inter (Calc.all_vars body) ctx) in
      sum gb (mat_product st ~ctx:ctx' ~bound body)
  | body -> mat_product st ~ctx ~bound body

and mat_product st ~ctx ~bound body =
  if not (Calc.has_base_rels body) then body
  else
    let fs = Poly.factors body in

    let fs_arr = Array.of_list fs in
    let preceding_visible i =
      let acc = ref bound in
      Array.iteri
        (fun j f -> if j < i then acc := Schema.union !acc (visible f))
        fs_arr;
      !acc
    in
    (* What a factor exposes to its siblings: its output schema, its free
       input variables (comparison operands), and — for Lift/Exists, whose
       semantics depend on evaluation-time boundness — every variable of
       theirs that was bound at their position (group-by correlations).
       Variables internal to Sum/Lift bodies do not leak. *)
    let exposes j f =
      let base = Schema.union (visible f) (Calc.inputs f) in
      match f with
      | Lift _ ->
          Schema.union base
            (Schema.inter (Calc.all_vars f) (preceding_visible j))
      | _ -> base
    in
    let sibling_vars i =
      let acc = ref ctx in
      Array.iteri
        (fun j f -> if j <> i then acc := Schema.union !acc (exposes j f))
        fs_arr;
      !acc
    in
    (* A factor is materializable on its own only when it can be typed
       standalone; factors correlated with their siblings (e.g. a Lift whose
       body compares against an outer variable) keep their shell inline and
       have their relational insides materialized recursively. *)
    let typable f =
      match Calc.schema ~bound:[] f with
      | _ -> true
      | exception Type_error _ -> false
    in
    (* A Lift/Exists factor correlated with earlier factors cannot leave its
       binding context: lifting over a bound variable is a lookup with
       default 0, over a free one an iteration of non-zero groups.
       Materializing such a factor standalone would flip the semantics. *)
    let correlated i f =
      match f with
      | Lift _ ->
          Schema.inter (preceding_visible i) (Calc.all_vars f) <> []
      | _ -> false
    in
    let fs =
      List.mapi
        (fun i f ->
          let must_recurse =
            Calc.has_deltas f
            || (Calc.has_base_rels f && not (typable f))
            || (Calc.has_base_rels f && correlated i f)
          in
          if must_recurse || (Calc.has_base_rels f && st.mode = Classical)
          then
            let ictx = sibling_vars i and ibound = preceding_visible i in
            match f with
            | Lift (v, q) when must_recurse ->
                (i, Lift (v, mat_expr st ~ctx:ictx ~bound:ibound q))
            | Exists q when must_recurse ->
                (i, Exists (mat_expr st ~ctx:ictx ~bound:ibound q))
            | Sum (gb, q) when must_recurse ->
                let ictx' =
                  Schema.union gb (Schema.inter (Calc.all_vars q) ictx)
                in
                (i, sum gb (mat_expr st ~ctx:ictx' ~bound:ibound q))
            | f when st.mode = Classical && Calc.has_base_rels f ->
                (i, subst_base st f)
            | f -> (i, f)
          else (i, f))
        fs
    in
    if st.mode = Classical then
      let ordered =
        match Poly.reorder ~bound (List.map snd fs) with
        | Some o -> o
        | None -> List.map snd fs
      in
      prod ordered
    else
      (* Recursive mode: factor pure relational parts into components. *)
      let pure, _rest =
        List.partition
          (fun (_, f) ->
            Calc.has_base_rels f && not (Calc.has_deltas f)
            && not (is_filter f) && typable f)
          fs
      in
      let pure =
        if st.opts.factorize then pure
        else
          (* ablation: one monolithic component *)
          pure
      in
      let comps =
        if st.opts.factorize then components pure
        else
          match pure with
          | [] -> []
          | _ ->
              [
                ( List.fold_left
                    (fun acc (_, f) -> Schema.union acc (visible f))
                    [] pure,
                  pure );
              ]
      in
      let filters = List.filter (fun (_, f) -> is_filter f) fs in
      (* Attach each filter to the first component covering its variables. *)
      let attached = Hashtbl.create 8 in
      let comps =
        List.map
          (fun (cvs, members) ->
            let extra =
              List.filter
                (fun (i, f) ->
                  (not (Hashtbl.mem attached i))
                  && filter_vars f <> []
                  && Schema.subset (filter_vars f) cvs
                  &&
                  (Hashtbl.add attached i ();
                   true))
                filters
            in
            (cvs, members, extra))
          comps
      in
      (* Materialize each component as a map. *)
      let replacements = Hashtbl.create 8 in
      let consumed = Hashtbl.create 8 in
      List.iter
        (fun (cvs, members, extra) ->
          let member_idxs = List.map fst members @ List.map fst extra in
          let first = List.fold_left min max_int member_idxs in
          List.iter (fun i -> Hashtbl.replace consumed i ()) member_idxs;
          let others =
            let acc = ref ctx in
            Array.iteri
              (fun j f ->
                if not (List.mem j member_idxs) then
                  acc := Schema.union !acc (exposes j f))
              fs_arr;
            !acc
          in
          let matvars = Schema.inter cvs others in
          let body_factors = List.map snd members @ List.map snd extra in
          let ordered =
            match Poly.reorder ~bound:[] body_factors with
            | Some o -> o
            | None -> body_factors
          in
          let def = sum matvars (prod ordered) in
          let kind =
            match ordered with
            | [ Rel r ] when Schema.equal_as_sets matvars r.rvars -> Prog.Base
            | _ -> Prog.Auxiliary
          in
          let hint =
            match kind with
            | Prog.Base -> (
                match ordered with
                | [ Rel r ] -> "BASE_" ^ r.rname
                | _ -> "V")
            | _ ->
                let rels = Calc.base_rels (prod ordered) in
                "V_"
                ^ String.concat ""
                    (List.map (fun r -> String.sub r 0 (min 2 (String.length r))) rels)
          in
          let name = declare st ~kind ~hint ~schema:matvars ~def in
          Hashtbl.replace replacements first
            (Map { mname = name; mvars = matvars }))
        comps;
      let new_fs =
        List.filter_map
          (fun (i, f) ->
            match Hashtbl.find_opt replacements i with
            | Some m -> Some (m, None)
            | None ->
                if Hashtbl.mem consumed i then None
                else
                  (* order-sensitive factors carry the boundness of their
                     original position as the semantic reference *)
                  let o =
                    match f with
                    | Lift _ | Exists _ -> Some (preceding_visible i)
                    | _ -> None
                  in
                  Some (f, o))
          fs
      in
      let ordered =
        match
          Poly.reorder ~bound ~orig:(List.map snd new_fs) (List.map fst new_fs)
        with
        | Some o -> o
        | None -> List.map fst new_fs
      in
      prod ordered

(* ------------------------------------------------------------------ *)
(* Trigger derivation                                                  *)
(* ------------------------------------------------------------------ *)

let push st rel stmt = st.stmts <- (rel, stmt) :: st.stmts

(* Re-evaluation path (Example 3.3): recompute the map from scratch per
   batch, but "speed up the computation by materializing the query
   piecewise" — the definition's connected components become incrementally
   maintained auxiliary views, and the assignment reads them post-update
   (scheduling places it after their refresh statements). In Classical
   mode only base relations are materialized. *)
let emit_reeval st (m : Prog.map_decl) rel =
  let rhs =
    match st.mode with
    | Classical -> sum m.mschema (subst_base st m.definition)
    | Recursive ->
        let piecewise =
          sum m.mschema (mat_expr st ~ctx:m.mschema ~bound:[] m.definition)
        in
        (* a definition that is one single component materializes back to
           the target itself — recompute it from base tables instead *)
        if List.mem m.mname (Calc.map_refs piecewise) then
          sum m.mschema (subst_base st m.definition)
        else piecewise
  in
  push st rel
    { Prog.target = m.mname; target_vars = m.mschema; op = Assign; rhs }

let derive st (m : Prog.map_decl) rel =
  let d =
    try Delta.of_expr ~rel m.definition
    with Type_error msg ->
      raise
        (Type_error
           (Printf.sprintf "deriving d%s of map %s := %s: %s" rel m.mname
              (Calc.to_string m.definition) msg))
  in
  if Calc.is_zero d.expr then ()
  else if d.expensive then emit_reeval st m rel
  else
    let rhss =
      List.map
        (fun mono -> sum m.mschema (mat_mono st ~ctx:m.mschema ~bound:[] mono))
        (Poly.monomials d.expr)
    in
    (* A statement's RHS reads pre-update map state; if any monomial reads
       the target itself, all monomials must apply atomically — merge them
       into one statement. *)
    let self_reading =
      List.exists (fun rhs -> List.mem m.mname (Calc.map_refs rhs)) rhss
    in
    let emit rhs =
      push st rel
        { Prog.target = m.mname; target_vars = m.mschema; op = Add_to; rhs }
    in
    if self_reading then emit (add rhss) else List.iter emit rhss

(* ------------------------------------------------------------------ *)
(* Statement scheduling                                                *)
(* ------------------------------------------------------------------ *)

(* Order statements so that incremental (+=) statements read pre-update map
   state and re-evaluation (:=) statements read post-update state: for an
   incremental reader, reads precede writes of the same map; for an
   assigning reader, writes precede it. Relative order of writers to the
   same target is preserved. Cycles (which the degree-decreasing structure
   of recursive IVM avoids) fall back to degree-descending order. *)
let schedule st stmts =
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let edges = Array.make n [] in
  let indeg = Array.make n 0 in
  let add_edge i j =
    if i <> j && not (List.mem j edges.(i)) then begin
      edges.(i) <- j :: edges.(i);
      indeg.(j) <- indeg.(j) + 1
    end
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if String.equal arr.(i).Prog.target arr.(j).Prog.target then
        add_edge i j
    done
  done;
  for i = 0 to n - 1 do
    let reads = Calc.map_refs arr.(i).Prog.rhs in
    for j = 0 to n - 1 do
      if i <> j && List.mem arr.(j).Prog.target reads then
        match arr.(i).Prog.op with
        | Prog.Add_to -> add_edge i j (* read pre-state: reader first *)
        | Prog.Assign -> add_edge j i (* re-eval: writer first *)
    done
  done;
  let out = ref [] in
  let done_ = Array.make n false in
  let remaining = ref n in
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    (* pick the smallest-index ready node for stability *)
    let ready = ref (-1) in
    for i = n - 1 downto 0 do
      if (not done_.(i)) && indeg.(i) = 0 then ready := i
    done;
    if !ready >= 0 then begin
      let i = !ready in
      done_.(i) <- true;
      decr remaining;
      progress := true;
      out := i :: !out;
      List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) edges.(i)
    end
  done;
  if !remaining > 0 then begin
    Logs.warn (fun k ->
        k "Compile.schedule: dependency cycle among %d statements; falling \
           back to degree order"
          !remaining);
    let degree_of s =
      match
        List.find_opt (fun m -> m.Prog.mname = s.Prog.target) st.maps
      with
      | Some m -> Calc.degree m.definition
      | None -> 0
    in
    let rest =
      List.init n Fun.id
      |> List.filter (fun i -> not done_.(i))
      |> List.sort (fun a b ->
             compare (degree_of arr.(b)) (degree_of arr.(a)))
    in
    out := List.rev_append rest !out
  end;
  List.rev_map (fun i -> arr.(i)) !out

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run_worklist st =
  let rec loop () =
    match st.worklist with
    | [] -> ()
    | m :: rest ->
        st.worklist <- rest;
        let rels =
          List.filter (is_stream st) (Calc.base_rels m.Prog.definition)
        in
        List.iter (derive st m) rels;
        loop ()
  in
  loop ()

let init ?(options = default_options) ~mode ~streams () =
  {
    opts = options;
    mode;
    streams;
    canon = Hashtbl.create 64;
    maps = [];
    worklist = [];
    stmts = [];
    counter = 0;
  }

let declare_queries st queries =
  List.map
    (fun (qn, def) ->
      let schema = Calc.schema def in
      let decl =
        { Prog.mname = qn; mschema = schema; mkind = Query; definition = def }
      in
      st.maps <- decl :: st.maps;
      st.worklist <- decl :: st.worklist;
      Hashtbl.replace st.canon (canon_key ~schema def) qn;
      (qn, qn))
    queries

let assemble st queries =
  let triggers =
    List.map
      (fun (r, _) ->
        let stmts =
          List.rev st.stmts
          |> List.filter_map (fun (r', s) ->
                 if String.equal r r' then Some s else None)
        in
        { Prog.relation = r; stmts = schedule st stmts })
      st.streams
  in
  {
    Prog.maps = List.rev st.maps;
    triggers;
    queries;
    streams = st.streams;
  }

let compile ?(options = default_options) ~streams queries =
  let st = init ~options ~mode:Recursive ~streams () in
  let qs = declare_queries st queries in
  run_worklist st;
  let prog = assemble st qs in
  if options.preaggregate then Preagg.apply prog else prog

let compile_classical ?(options = default_options) ~streams queries =
  let st = init ~options ~mode:Classical ~streams () in
  let qs = declare_queries st queries in
  run_worklist st;
  assemble st qs

let compile_reeval ~streams queries =
  let st = init ~mode:Classical ~streams () in
  let qs = declare_queries st queries in
  (* Only materialize base relations; recompute every query per batch.
     Drop the queries' canonical keys first: a query that is literally a
     bare base relation (Q := R(A,B)) would otherwise be found by the
     canonical-key dedup when [subst_base] asks for R's base map, turning
     the re-evaluation into the self-assignment Q := Q with no maintained
     base map at all. *)
  List.iter
    (fun (_, def) ->
      Hashtbl.remove st.canon (canon_key ~schema:(Calc.schema def) def))
    queries;
  st.worklist <- [];
  List.iter (fun (_, def) -> ignore (subst_base st def)) queries;
  let triggers =
    List.map
      (fun (r, _) ->
        let base_updates =
          List.filter_map
            (fun m ->
              match m.Prog.mkind with
              | Prog.Base when Calc.base_rels m.definition = [ r ] ->
                  Some
                    {
                      Prog.target = m.mname;
                      target_vars = m.mschema;
                      op = Prog.Add_to;
                      rhs = DeltaRel { rname = r; rvars = m.mschema };
                    }
              | _ -> None)
            st.maps
        in
        let reevals =
          List.filter_map
            (fun (qn, def) ->
              if List.mem r (Calc.base_rels def) then
                Some
                  {
                    Prog.target = qn;
                    target_vars = Calc.schema def;
                    op = Prog.Assign;
                    rhs = sum (Calc.schema def) (subst_base st def);
                  }
              else None)
            queries
        in
        { Prog.relation = r; stmts = base_updates @ reevals })
      streams
  in
  { Prog.maps = List.rev st.maps; triggers; queries = qs; streams }
