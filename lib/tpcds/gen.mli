(** Deterministic synthetic TPC-DS data and stream generator.

    At [scale = 1.]: 3000 store_sales rows over 1000 tickets, 730 dates,
    200 items, 150 customers, 10 stores, 50/60 demographic profiles, 100
    addresses. *)

open Divm_storage

type config = { scale : float; seed : int }

val default : config

(** Full table contents. *)
val tables : config -> (string * Gmr.t) list

(** Update stream: dimension tables first (bulk), then the fact stream
    chunked into batches of [batch_size]. *)
val stream : config -> batch_size:int -> (string * Gmr.t) list
