module Tsch = Schema
open Divm_ring
open Divm_storage
open Value

type config = { scale : float; seed : int }

let default = { scale = 1.; seed = 99 }

(* At scale 1: 3000 sales rows across 1000 tickets, 730 dates (two years),
   200 items, 150 customers, 10 stores, 50 household and 60 customer
   demographic profiles, 100 addresses. *)
let counts cfg =
  let u x = max 1 (int_of_float (float_of_int x *. cfg.scale)) in
  (u 3000, u 1000, u 200, u 150, u 100)

let tables_list cfg : (string * Vtuple.t list) list =
  let st = Random.State.make [| cfg.seed |] in
  let n_sales, n_tickets, n_item, n_cust, n_addr = counts cfg in
  let n_dates = 730 and n_store = 10 and n_hd = 50 and n_cd = 60 in
  let f x = Float x and i x = Int x and s x = String x in
  let date_dim =
    List.init n_dates (fun k ->
        let year = 1998 + (k / 365) in
        let doy = k mod 365 in
        [| i k; i year; i (1 + (doy / 31)); i (1 + (doy mod 28)); i (k mod 7) |])
  in
  let item =
    List.init n_item (fun k ->
        [|
          i k;
          i (1 + Random.State.int st 50);
          i (1 + Random.State.int st 10);
          i (1 + Random.State.int st 20);
          i (1 + Random.State.int st 40);
        |])
  in
  let customer =
    List.init n_cust (fun k -> [| i k; i (Random.State.int st n_addr) |])
  in
  let store =
    List.init n_store (fun k ->
        [| i k; i (Random.State.int st 20); i (Random.State.int st 8) |])
  in
  let hd =
    List.init n_hd (fun k ->
        [| i k; i (Random.State.int st 10); i (Random.State.int st 5) |])
  in
  let cd =
    List.init n_cd (fun k ->
        [|
          i k;
          s [| "M"; "F" |].(Random.State.int st 2);
          s [| "M"; "S"; "D" |].(Random.State.int st 3);
          s [| "Primary"; "College"; "Advanced Degree" |].(Random.State.int st 3);
        |])
  in
  let ca =
    List.init n_addr (fun k -> [| i k; i (Random.State.int st 20) |])
  in
  let sales =
    List.init n_sales (fun _ ->
        let list_price = 10. +. Random.State.float st 290. in
        let sales_price = list_price *. (0.5 +. Random.State.float st 0.5) in
        let qty = float_of_int (1 + Random.State.int st 20) in
        [|
          i (Random.State.int st n_dates);
          i (Random.State.int st n_item);
          i (Random.State.int st n_cust);
          i (Random.State.int st n_cd);
          i (Random.State.int st n_hd);
          i (Random.State.int st n_addr);
          i (Random.State.int st n_store);
          i (Random.State.int st n_tickets);
          f qty;
          f list_price;
          f sales_price;
          f (sales_price *. qty);
          f (Random.State.float st 20.);
          f ((sales_price -. (list_price *. 0.7)) *. qty);
        |])
  in
  [
    ("store_sales", sales);
    ("date_dim", date_dim);
    ("item", item);
    ("customer", customer);
    ("store", store);
    ("household_demographics", hd);
    ("customer_demographics", cd);
    ("customer_address", ca);
  ]

let tables cfg =
  List.map
    (fun (n, tuples) ->
      let g = Gmr.create ~size:(List.length tuples) () in
      List.iter (fun t -> Gmr.add g t 1.) tuples;
      (n, g))
    (tables_list cfg)

let stream cfg ~batch_size =
  let tl = tables_list cfg in
  (* dimensions first (they are small and static-ish), then the fact table
     chunked — the round-robin effect of §6 matters only for the fact
     stream here *)
  let dims = List.filter (fun (n, _) -> n <> "store_sales") tl in
  let sales = List.assoc "store_sales" tl in
  let out = ref [] in
  List.iter
    (fun (n, tuples) ->
      let g = Gmr.create ~size:(List.length tuples) () in
      List.iter (fun t -> Gmr.add g t 1.) tuples;
      out := (n, g) :: !out)
    dims;
  let cur = ref (Gmr.create ~size:batch_size ()) in
  let k = ref 0 in
  List.iter
    (fun t ->
      Gmr.add !cur t 1.;
      incr k;
      if !k >= batch_size then begin
        out := ("store_sales", !cur) :: !out;
        cur := Gmr.create ~size:batch_size ();
        k := 0
      end)
    sales;
  if Gmr.cardinal !cur > 0 then out := ("store_sales", !cur) :: !out;
  List.rev !out
