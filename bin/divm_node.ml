(* divm_node — worker process of the multi-process engine.

   The coordinator (Node.create, e.g. behind `divm_cluster --backend
   multiprocess`) execs this binary once per worker:

     divm_node --worker --socket /tmp/divm_node_PID_N.sock --id K

   The worker connects to the coordinator's Unix domain socket,
   identifies itself with a Hello frame, receives the marshaled
   distributed program, and then serves Load_batch / Run_block /
   Pull_map / Deliver / Clear_map requests until Shutdown (see
   Protocol). Under the default mesh topology the coordinator also
   sends Peers / Mesh_connect (establishing direct worker-to-worker
   sockets) and drives each transfer with a Shuffle request, whose
   payload bytes travel peer-to-peer as Mesh_data frames instead of
   through the coordinator. It never parses queries or opens data
   files itself — everything arrives over the wire. *)

let usage () =
  prerr_endline
    "usage: divm_node --worker --socket PATH --id N\n\n\
     Worker process of the multi-process distributed engine; spawned by \
     the coordinator (divm_cluster --backend multiprocess), not run by \
     hand.";
  exit 2

let () =
  let socket = ref None and id = ref None and worker = ref false in
  let rec parse = function
    | [] -> ()
    | "--worker" :: tl ->
        worker := true;
        parse tl
    | "--socket" :: path :: tl ->
        socket := Some path;
        parse tl
    | "--id" :: n :: tl ->
        (match int_of_string_opt n with
        | Some i when i >= 0 -> id := Some i
        | _ -> usage ());
        parse tl
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!worker, !socket, !id) with
  | true, Some socket, Some id -> Divm.Node.worker_main ~socket ~id
  | _ -> usage ()
