(* divm_cluster — run a TPC-H query on a distributed backend and report
   per-batch metrics.

   --backend simulated (default): the deterministic cluster simulator —
   modeled latency, shuffled bytes, stages. --backend multiprocess: real
   worker processes over Unix domain sockets; the same cost model runs as
   a predictor, and each batch reports modeled latency next to measured
   wall time and actual wire bytes (--stage-json FILE writes the
   per-stage reconciliation). Both backends leave bit-identical stores.

   With --trace FILE every batch becomes a cluster:REL (or node:REL) span
   whose stage:N and transfer:NAME children carry modeled_ms attributes;
   --metrics prints the registry totals at exit. *)

open Divm
open Cmdliner
module Obs_cli = Divm_obs_cli.Obs_cli

let run query scale repeat stage_json (common : Obs_cli.common) =
  let cfg = common.engine in
  let eng = Engine.create ~config:cfg (Workload.find query) in
  Obs_cli.activate_engine eng common.opts;
  let w = Engine.workload eng in
  let workers =
    match cfg.backend with
    | Engine.Simulated cc -> cc.Cluster.workers
    | Engine.Multiprocess nc -> nc.Node.workers
    | Engine.Local -> 1
  in
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale; seed = 42 } ~batch_size:cfg.batch_size
  in
  Printf.printf
    "%s on %d %s workers (opt level %d), batches of %d tuples\n\
     %-10s %8s %9s %9s %8s %7s\n"
    w.Workload.wname workers (Engine.backend_name eng) cfg.opt_level
    cfg.batch_size "relation" "tuples" "modeled" "wall" "shuffle" "stages";
  let reports = ref [] in
  (* --repeat replays the stream: a load loop for watching the live
     --listen endpoint or soaking the telemetry path. Only the first
     pass prints per-batch rows; multiplicities accumulate across
     passes, which the per-batch reporting does not care about. *)
  for pass = 1 to max 1 repeat do
    List.iter
      (fun (rel, b) ->
        let r = Engine.apply_batch eng ~rel b in
        reports := r :: !reports;
        if pass = 1 then
          Printf.printf "%-10s %8d %8.1fms %8.1fms %7dKB %7d\n" rel
            r.Engine.tuples
            (Option.value r.Engine.modeled ~default:0. *. 1000.)
            (r.Engine.wall *. 1000.)
            (r.Engine.bytes_shuffled / 1024)
            r.Engine.stages)
      stream
  done;
  List.iter
    (fun (mname, _) ->
      Printf.printf "%s: %d result tuples\n" mname
        (Gmr.cardinal (Engine.query eng mname)))
    w.Workload.maps;
  (match stage_json with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Engine.reconcile_json (List.rev !reports));
      close_out oc;
      Printf.eprintf "wrote per-stage reconciliation to %s\n%!" file);
  Engine.shutdown eng

let query_t = Arg.(value & pos 0 string "Q3" & info [] ~docv:"QUERY")
let scale_t = Arg.(value & opt float 2.0 & info [ "scale" ] ~doc:"Stream scale")

let repeat_t =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"N"
        ~doc:
          "Replay the update stream $(docv) times (a load loop for \
           watching $(b,--listen) live or soaking the telemetry path).")

let stage_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "stage-json" ] ~docv:"FILE"
        ~doc:
          "Write per-stage predicted-vs-measured latency (and modeled vs \
           actual bytes) as JSON to $(docv) at the end of the run.")

(* This binary's defaults: the simulated backend, 8 workers, 2000-tuple
   batches — `--backend multiprocess --workers 2` flips to real processes. *)
let defaults =
  Engine.config
    ~backend:(Engine.Simulated (Cluster.config ~workers:8 ()))
    ~batch_size:2000 ()

let cmd =
  Cmd.v
    (Cmd.info "divm_cluster"
       ~doc:
         "Distributed incremental view maintenance on the simulated or \
          multi-process cluster")
    Term.(
      const run $ query_t $ scale_t $ repeat_t $ stage_json_t
      $ Obs_cli.parse_common ~defaults ())

let () = exit (Cmd.eval cmd)
