(* divm_cluster — run the simulated cluster on a TPC-H query and report
   per-batch metrics (modeled latency, shuffled bytes, stages).

   With --trace FILE every batch becomes a cluster:REL span whose stage:N
   and transfer:NAME children carry modeled_ms attributes that sum to the
   reported latency; --metrics prints the registry totals at exit. *)

open Divm
open Cmdliner

let run query workers batch_size scale level domains opts =
  let w = Workload.find query in
  let prog = Workload.compile w in
  let dp = Workload.distribute ~level w prog in
  let c = Cluster.create ~config:(Cluster.config ~workers ()) ?domains dp in
  Divm_obs_cli.Obs_cli.activate
    ~plan:(Profile.explain_dist ~name:w.wname dp)
    ~storage:(fun () -> Cluster.storage_stats c)
    opts;
  let stream = Tpch.Gen.stream { Tpch.Gen.scale; seed = 42 } ~batch_size in
  Printf.printf
    "%s on %d workers (opt level %d), batches of %d tuples\n%-10s %8s %9s %8s %7s\n"
    w.wname workers level batch_size "relation" "tuples" "latency" "shuffle"
    "stages";
  List.iter
    (fun (rel, b) ->
      let m = Cluster.apply_batch c ~rel b in
      Printf.printf "%-10s %8d %8.1fms %7dKB %7d\n" rel (Gmr.cardinal b)
        (m.Cluster.latency *. 1000.)
        (m.bytes_shuffled / 1024)
        m.stages)
    stream;
  List.iter
    (fun (mname, _) ->
      Printf.printf "%s: %d result tuples\n" mname
        (Gmr.cardinal (Cluster.result c mname)))
    w.maps

let query_t = Arg.(value & pos 0 string "Q3" & info [] ~docv:"QUERY")
let workers_t = Arg.(value & opt int 8 & info [ "workers"; "w" ] ~doc:"Workers")
let batch_t = Arg.(value & opt int 2000 & info [ "batch" ] ~doc:"Batch size")
let scale_t = Arg.(value & opt float 2.0 & info [ "scale" ] ~doc:"Stream scale")

let level_t =
  Arg.(value & opt int 3 & info [ "opt-level" ] ~doc:"Optimization level 0–3")

let domains_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "Execution domains for the simulated workers (default: \
           \\$(b,DIVM_DOMAINS) or 1). Distributed stages run worker-node \
           closures in parallel on a shared domain pool; modeled latency \
           and shuffled bytes are identical at any domain count.")

let cmd =
  Cmd.v
    (Cmd.info "divm_cluster"
       ~doc:"Distributed incremental view maintenance on the simulated cluster")
    Term.(
      const run $ query_t $ workers_t $ batch_t $ scale_t $ level_t
      $ domains_t $ Divm_obs_cli.Obs_cli.setup)

let () = exit (Cmd.eval cmd)
