(* divmc — the view-maintenance compiler front end.

   Compile a TPC-H/TPC-DS query (by name) or an SQL string over the TPC-H
   schema, and print the trigger program, the distributed program, or its
   job/stage summary. Takes the same engine flags as the runner binaries
   (--opt-level selects the distributed pipeline level; --backend and
   --workers parse but compile-only modes never spawn engines). *)

open Divm
open Cmdliner
module Obs_cli = Divm_obs_cli.Obs_cli

let run query sql mode preagg (common : Obs_cli.common) =
  let opts = common.opts in
  let level = common.engine.Engine.opt_level in
  let w =
    match sql with
    | Some text -> Workload.of_sql text
    | None -> Workload.find query
  in
  let prog = Workload.compile ~preaggregate:preagg w in
  match mode with
  | `Local ->
      if opts.explain then
        print_string (Profile.render (Profile.explain ~name:w.wname prog))
      else Format.printf "%a@." Prog.pp prog
  | `Dist ->
      let dp = Workload.distribute ~level w prog in
      if opts.explain then
        print_string (Profile.render (Profile.explain_dist ~name:w.wname dp))
      else Format.printf "%a@." Dprog.pp dp
  | `Stats ->
      let dp = Workload.distribute ~level w prog in
      if opts.explain then
        print_string (Profile.render (Profile.explain_dist ~name:w.wname dp));
      Format.printf "maps: %d  statements: %d@." (List.length prog.maps)
        (Prog.stmt_count prog);
      List.iter
        (fun (tr : Dprog.dtrigger) ->
          let jobs, stages = Dprog.jobs_and_stages dp tr.drelation in
          let l, d = Dprog.block_counts tr in
          Format.printf
            "trigger %-12s jobs=%d stages=%d blocks=%d local + %d distributed@."
            tr.drelation jobs stages l d)
        dp.dtriggers

let query_t =
  Arg.(value & pos 0 string "Q3" & info [] ~docv:"QUERY" ~doc:"Query name (Q1–Q22, DS3…)")

let sql_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "sql" ] ~docv:"SQL" ~doc:"Compile this SQL string (TPC-H schema) instead")

let mode_t =
  Arg.(
    value
    & vflag `Local
        [
          (`Local, info [ "local" ] ~doc:"Print the local trigger program (default)");
          (`Dist, info [ "dist" ] ~doc:"Print the distributed program");
          (`Stats, info [ "stats" ] ~doc:"Print program statistics");
        ])

let preagg_t =
  Arg.(
    value & opt bool true
    & info [ "preagg" ] ~doc:"Batch pre-aggregation (§3.3)")

let cmd =
  Cmd.v
    (Cmd.info "divmc" ~doc:"Compile queries to incremental maintenance programs")
    Term.(
      const run $ query_t $ sql_t $ mode_t $ preagg_t
      $ Obs_cli.parse_common ())

let () = exit (Cmd.eval cmd)
