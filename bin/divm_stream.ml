(* divm_stream — run a query over a synthesized update stream and report
   throughput and the result.

   Defaults to the local specialized runtime; --backend simulated or
   --backend multiprocess routes the same stream through the distributed
   engines behind the same Engine API.

   With --trace FILE each trigger firing shows up as a trigger:REL span
   with per-statement children; --metrics prints the registry (record
   ops, index probes, batch latency histogram, …) at exit. *)

open Divm
open Cmdliner
module Obs_cli = Divm_obs_cli.Obs_cli

let run query scale single show_result tbl_dir (common : Obs_cli.common) =
  let cfg = common.engine in
  let cfg =
    if single then { cfg with Engine.preaggregate = false } else cfg
  in
  let eng = Engine.create ~config:cfg (Workload.find query) in
  Obs_cli.activate_engine eng common.opts;
  let w = Engine.workload eng in
  let stream =
    match tbl_dir with
    | Some dir ->
        (* real dbgen data: each table arrives as one bulk batch *)
        Tpch.Load.load_dir dir
    | None ->
        Tpch.Gen.stream { Tpch.Gen.scale; seed = 42 } ~batch_size:cfg.batch_size
  in
  let tuples = ref 0 in
  let ops = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (rel, b) ->
      tuples := !tuples + Gmr.cardinal b;
      if single then
        Gmr.iter
          (fun tup m ->
            let r = Engine.apply_single eng ~rel tup m in
            ops := !ops + r.Engine.ops)
          b
      else begin
        let r = Engine.apply_batch eng ~rel b in
        ops := !ops + r.Engine.ops
      end)
    stream;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%s: %d tuples in %.3fs (%.0f tuples/s, %s mode, %s backend)\n"
    w.Workload.wname !tuples dt
    (float_of_int !tuples /. dt)
    (if single then "single-tuple"
     else Printf.sprintf "batch=%d" cfg.Engine.batch_size)
    (Engine.backend_name eng);
  Printf.printf "materialized maps: %d, record ops: %d\n"
    (List.length (Engine.prog eng).Prog.maps)
    !ops;
  if show_result then
    List.iter
      (fun (mname, _) ->
        Format.printf "%s = %a@." mname Gmr.pp (Engine.query eng mname))
      w.Workload.maps;
  Engine.shutdown eng

let query_t = Arg.(value & pos 0 string "Q3" & info [] ~docv:"QUERY")
let scale_t = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Stream scale")

let single_t =
  Arg.(value & flag & info [ "single" ] ~doc:"Tuple-at-a-time processing")

let result_t =
  Arg.(value & flag & info [ "result" ] ~doc:"Print the final query result")

let tbl_t =
  Arg.(
    value
    & opt (some dir) None
    & info [ "tbl-dir" ]
        ~doc:"Load dbgen .tbl files from this directory instead of generating")

let cmd =
  Cmd.v
    (Cmd.info "divm_stream" ~doc:"Maintain a TPC-H query over an update stream")
    Term.(
      const run $ query_t $ scale_t $ single_t $ result_t $ tbl_t
      $ Obs_cli.parse_common ~defaults:(Engine.config ~batch_size:1000 ()) ())

let () = exit (Cmd.eval cmd)
