(* divm_stream — run a query over a synthesized update stream with the
   specialized local runtime and report throughput and the result.

   With --trace FILE each trigger firing shows up as a trigger:REL span
   with per-statement children; --metrics prints the registry (record
   ops, index probes, batch latency histogram, …) at exit. *)

open Divm
open Cmdliner

let run query scale batch_size single show_result tbl_dir domains opts =
  let w = Workload.find query in
  let prog = Workload.compile ~preaggregate:(not single) w in
  let rt = Runtime.create ?domains prog in
  Divm_obs_cli.Obs_cli.activate
    ~plan:(Profile.explain ~name:w.wname prog)
    ~storage:(fun () -> Runtime.storage_stats rt)
    opts;
  let stream =
    match tbl_dir with
    | Some dir ->
        (* real dbgen data: each table arrives as one bulk batch *)
        Tpch.Load.load_dir dir
    | None -> Tpch.Gen.stream { Tpch.Gen.scale; seed = 42 } ~batch_size
  in
  let tuples = ref 0 in
  let ops = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (rel, b) ->
      tuples := !tuples + Gmr.cardinal b;
      if single then
        Gmr.iter
          (fun tup m ->
            let r = Runtime.apply_single rt ~rel tup m in
            ops := !ops + r.Runtime.ops)
          b
      else begin
        let r = Runtime.apply_batch rt ~rel b in
        ops := !ops + r.Runtime.ops
      end)
    stream;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%s: %d tuples in %.3fs (%.0f tuples/s, %s mode%s)\n" w.wname
    !tuples dt
    (float_of_int !tuples /. dt)
    (if single then "single-tuple" else Printf.sprintf "batch=%d" batch_size)
    (if Runtime.domains rt > 1 then
       Printf.sprintf ", %d domains" (Runtime.domains rt)
     else "");
  Printf.printf "materialized maps: %d, stored tuples: %d, record ops: %d\n"
    (List.length prog.maps) (Runtime.total_tuples rt) !ops;
  if show_result then
    List.iter
      (fun (mname, _) ->
        Format.printf "%s = %a@." mname Gmr.pp (Runtime.result rt mname))
      w.maps

let query_t = Arg.(value & pos 0 string "Q3" & info [] ~docv:"QUERY")
let scale_t = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Stream scale")

let batch_t =
  Arg.(value & opt int 1000 & info [ "batch" ] ~doc:"Update batch size")

let single_t =
  Arg.(value & flag & info [ "single" ] ~doc:"Tuple-at-a-time processing")

let result_t =
  Arg.(value & flag & info [ "result" ] ~doc:"Print the final query result")

let tbl_t =
  Arg.(
    value
    & opt (some dir) None
    & info [ "tbl-dir" ]
        ~doc:"Load dbgen .tbl files from this directory instead of generating")

let domains_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "Execution domains for batch triggers (default: \\$(b,DIVM_DOMAINS) \
           or 1). Vectorized statement groups fan the batch out over a \
           shared domain pool; serial statements are unaffected.")

let cmd =
  Cmd.v
    (Cmd.info "divm_stream" ~doc:"Maintain a TPC-H query over an update stream")
    Term.(
      const run $ query_t $ scale_t $ batch_t $ single_t $ result_t $ tbl_t
      $ domains_t $ Divm_obs_cli.Obs_cli.setup)

let () = exit (Cmd.eval cmd)
